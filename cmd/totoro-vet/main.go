// Command totoro-vet runs Totoro's static-analysis suite: stdlib-built
// analyzers that mechanically enforce the engine's determinism,
// concurrency, and wire invariants (see internal/lint).
//
// Usage:
//
//	totoro-vet [-only analyzer[,analyzer]] [-list] [-json] [packages]
//
// Packages are Go-style patterns relative to the module root ("./...",
// "internal/ring", "internal/..."); the default is the whole module.
// Exit status is 0 when clean, 1 when findings exist, 2 on usage or load
// errors. Judged exemptions are annotated in source:
//
//	//lint:ignore <analyzer> <reason>
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"totoro/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	asJSON := flag.Bool("json", false, "emit findings as JSON objects, one per line (file/line/col/analyzer/message)")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: totoro-vet [flags] [packages]\n\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		for _, name := range strings.Split(*only, ",") {
			if lint.AnalyzerByName(strings.TrimSpace(name)) == nil {
				fmt.Fprintf(os.Stderr, "totoro-vet: unknown analyzer %q (use -list)\n", name)
				os.Exit(2)
			}
		}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(os.Stderr, "totoro-vet: %v\n", err)
		os.Exit(2)
	}
	diags, err := lint.RunRepo(wd, flag.Args())
	if err != nil {
		fmt.Fprintf(os.Stderr, "totoro-vet: %v\n", err)
		os.Exit(2)
	}
	if *only != "" {
		keep := map[string]bool{lint.Directive.Name: true} // directive hygiene always applies
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		filtered := diags[:0]
		for _, d := range diags {
			if keep[d.Analyzer] {
				filtered = append(filtered, d)
			}
		}
		diags = filtered
	}
	for _, d := range diags {
		if *asJSON {
			enc, err := json.Marshal(finding{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "totoro-vet: %v\n", err)
				os.Exit(2)
			}
			fmt.Println(string(enc))
			continue
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}

// finding is the -json wire shape: one object per line, stable field
// names, ready for CI to turn into code annotations.
type finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}
