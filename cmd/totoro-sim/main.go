// totoro-sim is a simulation playground: it spins up a virtual edge
// deployment, launches concurrently training FL applications, and prints
// their trajectories.
//
//	totoro-sim -nodes 150 -apps 5 -clients 16 -fanout 16 -task speech
//
// With -churn the deployment trains under a seeded Poisson fault process
// (and is automatically configured for resilience: reliable routing hops,
// keep-alive tree repair, and master-state replication):
//
//	totoro-sim -churn 2s -churn-down 10s
//
// With -churn-restart, downed nodes come back with amnesia and recover
// from their write-ahead logs instead of reviving with memory intact:
//
//	totoro-sim -churn 2s -churn-down 10s -churn-restart
//
// With -nemesis the deployment trains under a composed, seeded fault
// schedule — partitions that heal, asymmetric link cuts, message
// drop/duplicate/reorder rules, stragglers, kill–restart, disk faults —
// while an always-on invariant checker asserts the engine's safety
// contract after every virtual-time step. A violation aborts the run
// with the seed for deterministic replay.
//
//	totoro-sim -nemesis 'partition@2s+3s/frac=0.3;dup@1s+8s/p=0.2;disk@4s+2s/n=1'
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	totoro "totoro"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/store"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 120, "edge nodes in the deployment")
		apps      = flag.Int("apps", 3, "concurrently training applications")
		clients   = flag.Int("clients", 12, "workers per application")
		samples   = flag.Int("samples", 50, "training samples per worker")
		fanout    = flag.Int("fanout", 16, "tree fanout: 8, 16, or 32")
		task      = flag.String("task", "speech", "workload: speech or femnist")
		rounds    = flag.Int("rounds", 40, "maximum training rounds")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		churn     = flag.Duration("churn", 0, "mean time between node failures (0 = no churn)")
		churnDown = flag.Duration("churn-down", 10*time.Second, "downtime before a failed node revives")
		restart   = flag.Bool("churn-restart", false, "downed nodes crash-restart from their write-ahead log instead of reviving with memory intact (implies durable stores)")
		nemesis   = flag.String("nemesis", "", "composed fault schedule: 'kind@start+dur[/k=v,...][;...]' with kinds partition, oneway, isolate, drop, dup, reorder, delay, slow, kill, disk (implies the resilient stack, durable stores, and always-on invariant checking)")
		metrics   = flag.Bool("metrics", false, "print the merged fleet telemetry snapshot after the run")
	)
	flag.Parse()

	var phases []simnet.Phase
	if *nemesis != "" {
		var err error
		if phases, err = simnet.ParseSchedule(*nemesis); err != nil {
			log.Fatalf("-nemesis: %v", err)
		}
	}

	var b int
	switch *fanout {
	case 8:
		b = 3
	case 16:
		b = 4
	case 32:
		b = 5
	default:
		log.Fatalf("fanout must be 8, 16, or 32")
	}
	var t workload.Task
	switch *task {
	case "speech":
		t = workload.TaskSpeech
	case "femnist":
		t = workload.TaskFEMNIST
	default:
		log.Fatalf("task must be speech or femnist")
	}

	cfg := totoro.ClusterConfig{
		N:         *nodes,
		Seed:      *seed,
		Ring:      ring.Config{B: b},
		Bandwidth: 2 << 20,
	}
	if *churn > 0 || len(phases) > 0 {
		// Churn and nemesis schedules demand the resilient stack: per-hop
		// acks with rerouting, keep-alive repair of broken tree edges,
		// partial-aggregation deadlines, and replicated master state for
		// failover.
		cfg.Ring.ReliableHops = true
		cfg.Ring.HopAckTimeout = 150 * time.Millisecond
		cfg.PubSub = pubsub.Config{
			KeepAliveInterval: 100 * time.Millisecond,
			KeepAliveTimeout:  300 * time.Millisecond,
			AggTimeout:        2 * time.Second,
		}
		cfg.Replicas = 2
		cfg.ReplicaCheckInterval = 300 * time.Millisecond
		cfg.FailoverGrace = 500 * time.Millisecond
	}
	if *restart {
		if *churn <= 0 {
			log.Fatal("-churn-restart needs -churn")
		}
		// Crash-restart churn: every node journals to a durable store and
		// reboots from it. Replication stays on — failover covers the
		// downtime, the WAL covers the reboot.
		cfg.Durable = true
	}
	if len(phases) > 0 {
		// Nemesis kill phases crash-restart their victims, and disk phases
		// need fault-injecting stores to land on.
		cfg.Durable = true
		cfg.FaultyStores = true
		cfg.OnViolation = func(v *simnet.InvariantViolation) {
			fmt.Println()
			log.Fatalf("INVARIANT VIOLATION\n%v", v)
		}
	}
	cluster := totoro.NewCluster(cfg)
	ws := workload.MakeApps(workload.Params{
		Task:             t,
		Apps:             *apps,
		ClientsPerApp:    *clients,
		SamplesPerClient: *samples,
		Seed:             *seed,
	})
	// Place workers explicitly so churn (if any) can exempt them: the demo
	// is about infrastructure failures, not losing the training data.
	placer := rand.New(rand.NewSource(*seed))
	var appIDs []totoro.AppID
	var exempt []transport.Addr
	for _, a := range ws {
		a.MaxRounds = *rounds
		perm := placer.Perm(len(cluster.Engines))
		workers := perm[:len(a.Shards)]
		appIDs = append(appIDs, cluster.Deploy(a, workers[0], workers))
		for _, w := range workers {
			exempt = append(exempt, cluster.Engines[w].Self().Addr)
		}
	}
	fmt.Printf("deployment: %d nodes, fanout %d, %d apps x %d workers\n",
		*nodes, *fanout, *apps, *clients)
	for i, id := range appIDs {
		m := cluster.Master(id)
		exempt = append(exempt, m.Self().Addr)
		fmt.Printf("  %-12s master=%s appId=%s…\n", ws[i].Name, m.Self().Addr, id.Short())
	}

	if *churn > 0 || len(phases) > 0 {
		cluster.StartMaintenance(500 * time.Millisecond)
	}

	var chaos *totoro.Chaos
	var nem *simnet.Nemesis
	if len(phases) > 0 {
		chaos = cluster.StartChaos(totoro.ChaosConfig{})
		var err error
		nem, err = cluster.Net.StartNemesis(simnet.NemesisConfig{
			Seed:   *seed + 2,
			Phases: phases,
			Exempt: exempt,
			OnDisk: chaos.DiskFault(store.FaultFsync),
			OnRestart: func(addr transport.Addr, now time.Duration) {
				cluster.Restarted(addr)
			},
			OnPhase: func(ph simnet.Phase, active bool, victims []transport.Addr) {
				state := "heal"
				if active {
					state = "inject"
				}
				fmt.Printf("  nemesis %-6s t=%-6s %s victims=%v\n",
					state, cluster.Net.Now(), ph.String(), victims)
			},
		})
		if err != nil {
			log.Fatalf("-nemesis: %v", err)
		}
		fmt.Printf("nemesis: %d phases, invariant checking on (workers and masters exempt from kills)\n", len(phases))
	}

	var faults *simnet.Churn
	if *churn > 0 {
		faults = cluster.Net.StartChurn(simnet.ChurnConfig{
			Seed:      *seed + 1,
			FailEvery: *churn,
			Downtime:  *churnDown,
			Exempt:    exempt,
			Restart:   *restart,
			OnRestart: func(addr transport.Addr, now time.Duration) { cluster.Restarted(addr) },
		})
		mode := "revive"
		if *restart {
			mode = "crash-restart from WAL"
		}
		fmt.Printf("churn: one failure per %v on average, %v downtime, %s (masters and workers exempt)\n",
			*churn, *churnDown, mode)
	}

	progress := cluster.Train(appIDs...)
	fmt.Println("\nresults:")
	for i, p := range progress {
		last := p.Points[len(p.Points)-1]
		fmt.Printf("  %-12s rounds=%3d acc=%.3f target=%.3f reached=%v done=%.1fs\n",
			ws[i].Name, last.Round, last.Accuracy, ws[i].TargetAccuracy, p.Reached, p.Done.Seconds())
	}
	if faults != nil {
		faults.Stop()
		repairs := 0
		for _, e := range cluster.Engines {
			repairs += int(e.Metrics().Counter("pubsub.repairs").Value())
		}
		recoveries := 0
		for _, e := range cluster.Engines {
			recoveries += int(e.Metrics().Counter("engine.recoveries").Value())
		}
		fmt.Printf("\nchurn: %d failures injected, %d revived, %d restarted (%d WAL recoveries), %d still down; %d tree repairs\n",
			faults.Fails, faults.Revives, faults.Restarts, recoveries, faults.Down(), repairs)
	}
	if nem != nil {
		// Quiesce check: one last pass over every invariant now that the
		// schedule has drained (violations mid-run already aborted).
		cluster.Net.CheckInvariants()
		dropsByCause := func(name string) int64 {
			return cluster.Net.Metrics().Counter(name).Value()
		}
		fmt.Printf("\nnemesis: %d phases ran (%d kills, %d restarts); drops: %d partition, %d fault-rule, %d dead; %d dups, %d reorders injected\n",
			nem.Phases, nem.Kills, nem.Restarts,
			dropsByCause("net.dropped_partition"), dropsByCause("net.dropped_fault"), dropsByCause("net.dropped_dead"),
			dropsByCause("net.dup_injected"), dropsByCause("net.reorder_injected"))
		fmt.Printf("invariants: ok — %d round commits checked, zero violations (seed %d replays this run bit-identically)\n",
			chaos.Commits, *seed)
	}

	var worst float64
	for _, p := range progress {
		if s := p.Done.Seconds(); s > worst {
			worst = s
		}
	}
	fmt.Printf("\ntotal virtual time to train all %d apps: %.1fs\n", *apps, worst)

	if *metrics {
		// The same registry a live node serves at /metrics, merged across the
		// whole simulated fleet; deterministic for a given seed.
		fmt.Println("\nfleet telemetry snapshot:")
		fmt.Print(cluster.Net.MergedSnapshot().String())
	}
}
