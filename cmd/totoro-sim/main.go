// totoro-sim is a simulation playground: it spins up a virtual edge
// deployment, launches concurrently training FL applications, and prints
// their trajectories.
//
//	totoro-sim -nodes 150 -apps 5 -clients 16 -fanout 16 -task speech
package main

import (
	"flag"
	"fmt"
	"log"

	totoro "totoro"
	"totoro/internal/ring"
	"totoro/internal/workload"
)

func main() {
	var (
		nodes   = flag.Int("nodes", 120, "edge nodes in the deployment")
		apps    = flag.Int("apps", 3, "concurrently training applications")
		clients = flag.Int("clients", 12, "workers per application")
		samples = flag.Int("samples", 50, "training samples per worker")
		fanout  = flag.Int("fanout", 16, "tree fanout: 8, 16, or 32")
		task    = flag.String("task", "speech", "workload: speech or femnist")
		rounds  = flag.Int("rounds", 40, "maximum training rounds")
		seed    = flag.Int64("seed", 1, "deterministic seed")
	)
	flag.Parse()

	var b int
	switch *fanout {
	case 8:
		b = 3
	case 16:
		b = 4
	case 32:
		b = 5
	default:
		log.Fatalf("fanout must be 8, 16, or 32")
	}
	var t workload.Task
	switch *task {
	case "speech":
		t = workload.TaskSpeech
	case "femnist":
		t = workload.TaskFEMNIST
	default:
		log.Fatalf("task must be speech or femnist")
	}

	cluster := totoro.NewCluster(totoro.ClusterConfig{
		N:         *nodes,
		Seed:      *seed,
		Ring:      ring.Config{B: b},
		Bandwidth: 2 << 20,
	})
	ws := workload.MakeApps(workload.Params{
		Task:             t,
		Apps:             *apps,
		ClientsPerApp:    *clients,
		SamplesPerClient: *samples,
		Seed:             *seed,
	})
	var appIDs []totoro.AppID
	for _, a := range ws {
		a.MaxRounds = *rounds
		appIDs = append(appIDs, cluster.DeployOnRandomNodes(a))
	}
	fmt.Printf("deployment: %d nodes, fanout %d, %d apps x %d workers\n",
		*nodes, *fanout, *apps, *clients)
	for i, id := range appIDs {
		fmt.Printf("  %-12s master=%s appId=%s…\n",
			ws[i].Name, cluster.Master(id).Self().Addr, id.Short())
	}

	progress := cluster.Train(appIDs...)
	fmt.Println("\nresults:")
	for i, p := range progress {
		last := p.Points[len(p.Points)-1]
		fmt.Printf("  %-12s rounds=%3d acc=%.3f target=%.3f reached=%v done=%.1fs\n",
			ws[i].Name, last.Round, last.Accuracy, ws[i].TargetAccuracy, p.Reached, p.Done.Seconds())
	}
	var worst float64
	for _, p := range progress {
		if s := p.Done.Seconds(); s > worst {
			worst = s
		}
	}
	fmt.Printf("\ntotal virtual time to train all %d apps: %.1fs\n", *apps, worst)
}
