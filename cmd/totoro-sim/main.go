// totoro-sim is a simulation playground: it spins up a virtual edge
// deployment, launches concurrently training FL applications, and prints
// their trajectories.
//
//	totoro-sim -nodes 150 -apps 5 -clients 16 -fanout 16 -task speech
//
// With -churn the deployment trains under a seeded Poisson fault process
// (and is automatically configured for resilience: reliable routing hops,
// keep-alive tree repair, and master-state replication):
//
//	totoro-sim -churn 2s -churn-down 10s
//
// With -churn-restart, downed nodes come back with amnesia and recover
// from their write-ahead logs instead of reviving with memory intact:
//
//	totoro-sim -churn 2s -churn-down 10s -churn-restart
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"time"

	totoro "totoro"
	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

func main() {
	var (
		nodes     = flag.Int("nodes", 120, "edge nodes in the deployment")
		apps      = flag.Int("apps", 3, "concurrently training applications")
		clients   = flag.Int("clients", 12, "workers per application")
		samples   = flag.Int("samples", 50, "training samples per worker")
		fanout    = flag.Int("fanout", 16, "tree fanout: 8, 16, or 32")
		task      = flag.String("task", "speech", "workload: speech or femnist")
		rounds    = flag.Int("rounds", 40, "maximum training rounds")
		seed      = flag.Int64("seed", 1, "deterministic seed")
		churn     = flag.Duration("churn", 0, "mean time between node failures (0 = no churn)")
		churnDown = flag.Duration("churn-down", 10*time.Second, "downtime before a failed node revives")
		restart   = flag.Bool("churn-restart", false, "downed nodes crash-restart from their write-ahead log instead of reviving with memory intact (implies durable stores)")
		metrics   = flag.Bool("metrics", false, "print the merged fleet telemetry snapshot after the run")
	)
	flag.Parse()

	var b int
	switch *fanout {
	case 8:
		b = 3
	case 16:
		b = 4
	case 32:
		b = 5
	default:
		log.Fatalf("fanout must be 8, 16, or 32")
	}
	var t workload.Task
	switch *task {
	case "speech":
		t = workload.TaskSpeech
	case "femnist":
		t = workload.TaskFEMNIST
	default:
		log.Fatalf("task must be speech or femnist")
	}

	cfg := totoro.ClusterConfig{
		N:         *nodes,
		Seed:      *seed,
		Ring:      ring.Config{B: b},
		Bandwidth: 2 << 20,
	}
	if *churn > 0 {
		// Churn demands the resilient stack: per-hop acks with rerouting,
		// keep-alive repair of broken tree edges, partial-aggregation
		// deadlines, and replicated master state for failover.
		cfg.Ring.ReliableHops = true
		cfg.Ring.HopAckTimeout = 150 * time.Millisecond
		cfg.PubSub = pubsub.Config{
			KeepAliveInterval: 100 * time.Millisecond,
			KeepAliveTimeout:  300 * time.Millisecond,
			AggTimeout:        2 * time.Second,
		}
		cfg.Replicas = 2
		cfg.ReplicaCheckInterval = 300 * time.Millisecond
		cfg.FailoverGrace = 500 * time.Millisecond
	}
	if *restart {
		if *churn <= 0 {
			log.Fatal("-churn-restart needs -churn")
		}
		// Crash-restart churn: every node journals to a durable store and
		// reboots from it. Replication stays on — failover covers the
		// downtime, the WAL covers the reboot.
		cfg.Durable = true
	}
	cluster := totoro.NewCluster(cfg)
	ws := workload.MakeApps(workload.Params{
		Task:             t,
		Apps:             *apps,
		ClientsPerApp:    *clients,
		SamplesPerClient: *samples,
		Seed:             *seed,
	})
	// Place workers explicitly so churn (if any) can exempt them: the demo
	// is about infrastructure failures, not losing the training data.
	placer := rand.New(rand.NewSource(*seed))
	var appIDs []totoro.AppID
	var exempt []transport.Addr
	for _, a := range ws {
		a.MaxRounds = *rounds
		perm := placer.Perm(len(cluster.Engines))
		workers := perm[:len(a.Shards)]
		appIDs = append(appIDs, cluster.Deploy(a, workers[0], workers))
		for _, w := range workers {
			exempt = append(exempt, cluster.Engines[w].Self().Addr)
		}
	}
	fmt.Printf("deployment: %d nodes, fanout %d, %d apps x %d workers\n",
		*nodes, *fanout, *apps, *clients)
	for i, id := range appIDs {
		m := cluster.Master(id)
		exempt = append(exempt, m.Self().Addr)
		fmt.Printf("  %-12s master=%s appId=%s…\n", ws[i].Name, m.Self().Addr, id.Short())
	}

	var faults *simnet.Churn
	if *churn > 0 {
		cluster.StartMaintenance(500 * time.Millisecond)
		faults = cluster.Net.StartChurn(simnet.ChurnConfig{
			Seed:      *seed + 1,
			FailEvery: *churn,
			Downtime:  *churnDown,
			Exempt:    exempt,
			Restart:   *restart,
			OnRestart: func(addr transport.Addr, now time.Duration) { cluster.Restarted(addr) },
		})
		mode := "revive"
		if *restart {
			mode = "crash-restart from WAL"
		}
		fmt.Printf("churn: one failure per %v on average, %v downtime, %s (masters and workers exempt)\n",
			*churn, *churnDown, mode)
	}

	progress := cluster.Train(appIDs...)
	fmt.Println("\nresults:")
	for i, p := range progress {
		last := p.Points[len(p.Points)-1]
		fmt.Printf("  %-12s rounds=%3d acc=%.3f target=%.3f reached=%v done=%.1fs\n",
			ws[i].Name, last.Round, last.Accuracy, ws[i].TargetAccuracy, p.Reached, p.Done.Seconds())
	}
	if faults != nil {
		faults.Stop()
		repairs := 0
		for _, e := range cluster.Engines {
			repairs += int(e.Metrics().Counter("pubsub.repairs").Value())
		}
		recoveries := 0
		for _, e := range cluster.Engines {
			recoveries += int(e.Metrics().Counter("engine.recoveries").Value())
		}
		fmt.Printf("\nchurn: %d failures injected, %d revived, %d restarted (%d WAL recoveries), %d still down; %d tree repairs\n",
			faults.Fails, faults.Revives, faults.Restarts, recoveries, faults.Down(), repairs)
	}
	var worst float64
	for _, p := range progress {
		if s := p.Done.Seconds(); s > worst {
			worst = s
		}
	}
	fmt.Printf("\ntotal virtual time to train all %d apps: %.1fs\n", *apps, worst)

	if *metrics {
		// The same registry a live node serves at /metrics, merged across the
		// whole simulated fleet; deterministic for a given seed.
		fmt.Println("\nfleet telemetry snapshot:")
		fmt.Print(cluster.Net.MergedSnapshot().String())
	}
}
