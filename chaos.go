package totoro

import (
	"fmt"
	"time"

	"totoro/internal/store"
	"totoro/internal/transport"
)

// Chaos is the always-on invariant checker of the chaos harness: it
// couples a Cluster to simnet's fault layer, asserting the engine's
// safety contract after every virtual-time step (the network runs
// registered invariants whenever the clock advances, and once more at
// quiesce via CheckInvariants). A violation fails the run through
// simnet's violation machinery, which captures the seed and the tail of
// the merged trace ring for deterministic replay.
//
// The checks are scoped to what the protocol actually promises. Totoro
// has no consensus layer, so two masters for one app is legal *during* a
// partition; the invariant is that they reconcile by epoch — promptly,
// once they can talk — and that the loser's divergent state is
// discarded, never merged. Checks that would fire on legal transients
// are therefore reachability-scoped and grace-bounded, while the
// per-lineage checks (epoch monotonicity, committed-round progress,
// participant accounting, replica staleness) are exact.
//
// Install it after Deploy and before training or fault injection:
//
//	chaos := cluster.StartChaos(ChaosConfig{})
//	... StartNemesis / Train ...
//	cluster.Net.CheckInvariants() // quiesce check
type Chaos struct {
	c   *Cluster
	cfg ChaosConfig

	// epochs records, per live engine object and app, the highest
	// mastership epoch that engine has held or witnessed (master or
	// replica role). Keyed by engine pointer: a crash-restart rebuilds
	// the engine, and its recovered view legitimately restarts from
	// whatever its journal's clean prefix holds.
	epochs map[*Engine]map[AppID]int
	// lastCommit tracks the last committed round per master lineage
	// (committer address + app + epoch): commits must strictly advance.
	lastCommit map[commitKey]int
	// maxAcked is the highest round any master acknowledged (journaled
	// and replicated) per (app, epoch); no replica may hold more.
	maxAcked map[appEpoch]int
	// eligible is the number of deployed workers per app; no commit may
	// merge more participants than that.
	eligible map[AppID]int
	// dualSince records when two mutually-reachable live masters for an
	// app were first observed (cleared when the condition clears).
	dualSince map[AppID]time.Duration
	pending   error

	// Commits counts observed round commits (test instrumentation).
	Commits int
}

type appEpoch struct {
	app   AppID
	epoch int
}

type commitKey struct {
	by    transport.Addr
	app   AppID
	epoch int
}

// ChaosConfig parameterizes the checker.
type ChaosConfig struct {
	// DualMasterGrace bounds how long two live, mutually-reachable
	// masters for one app may coexist before the checker declares the
	// split-brain unreconciled (0 = 3s). The window covers ring
	// maintenance re-merging leaf sets after a heal plus one replication
	// round-trip — the path by which the losing master learns it lost.
	DualMasterGrace time.Duration
}

// StartChaos installs the invariant checker over the cluster: hooks on
// every engine (re-installed on crash-restart rebuilds) and a check
// function registered with the network's step loop.
func (c *Cluster) StartChaos(cfg ChaosConfig) *Chaos {
	if cfg.DualMasterGrace <= 0 {
		cfg.DualMasterGrace = 3 * time.Second
	}
	ch := &Chaos{
		c:          c,
		cfg:        cfg,
		epochs:     make(map[*Engine]map[AppID]int),
		lastCommit: make(map[commitKey]int),
		maxAcked:   make(map[appEpoch]int),
		eligible:   make(map[AppID]int),
		dualSince:  make(map[AppID]time.Duration),
	}
	for i := range c.shards {
		for _, app := range sortedApps(c.shards[i]) {
			ch.eligible[app]++
		}
	}
	for i, e := range c.Engines {
		ch.install(i, e)
	}
	c.onBuild = ch.install
	c.Net.AddInvariant(ch.check)
	return ch
}

// install wires one engine (initial or rebuilt after Restart) into the
// checker.
func (ch *Chaos) install(_ int, e *Engine) {
	e.AckHook = func(app AppID, epoch, round, participants int, commit bool) {
		ch.observe(e, app, epoch, round, participants, commit)
	}
}

// DiskFault adapts the cluster's faulty stores to a nemesis schedule's
// disk phases: pass the result as NemesisConfig.OnDisk. Requires
// ClusterConfig.FaultyStores.
func (ch *Chaos) DiskFault(kind store.FaultKind) func(addr transport.Addr, active bool) {
	return func(addr transport.Addr, active bool) {
		i := ch.c.EngineIndex(addr)
		if i < 0 || ch.c.faulty[i] == nil {
			return
		}
		if active {
			ch.c.faulty[i].Fail(kind)
		} else {
			ch.c.faulty[i].Heal()
		}
	}
}

// observe is the synchronous per-ack hook: it runs on the engine's event
// loop at the exact moment state is acknowledged, so the commit history
// it builds is free of polling races.
func (ch *Chaos) observe(e *Engine, app AppID, epoch, round, participants int, commit bool) {
	key := appEpoch{app, epoch}
	if round > ch.maxAcked[key] {
		ch.maxAcked[key] = round
	}
	if !commit {
		return
	}
	ch.Commits++
	addr := e.Self().Addr
	ck := commitKey{addr, app, epoch}
	if last, seen := ch.lastCommit[ck]; seen && round <= last {
		ch.fail(fmt.Errorf("app %s: master %s committed round %d at epoch %d after already committing round %d",
			app.Short(), addr, round, epoch, last))
		return
	}
	ch.lastCommit[ck] = round
	if n := ch.eligible[app]; n > 0 && participants > n {
		ch.fail(fmt.Errorf("app %s: round %d (epoch %d, master %s) merged %d participants but only %d workers are deployed — a client update was double-counted",
			app.Short(), round, epoch, addr, participants, n))
	}
}

func (ch *Chaos) fail(err error) {
	if ch.pending == nil {
		ch.pending = err
	}
}

// check is the invariant function the network runs on every step that
// advances virtual time, and at quiesce. Iteration is index- and
// sort-ordered throughout so a violation (and its message) is
// deterministic for a given seed.
func (ch *Chaos) check() error {
	if ch.pending != nil {
		return ch.pending
	}
	for i := range ch.c.Engines {
		if err := ch.checkEngine(ch.c.Engines[i]); err != nil {
			return err
		}
	}
	return ch.checkDualMasters()
}

// checkEngine asserts per-engine invariants: mastership epochs never
// regress within one engine incarnation, and no held replica is ahead of
// what its master ever acknowledged.
func (ch *Chaos) checkEngine(e *Engine) error {
	em := ch.epochs[e]
	if em == nil {
		em = make(map[AppID]int)
		ch.epochs[e] = em
	}
	for _, app := range sortedApps(e.masters) {
		if err := ch.noteEpoch(e, em, app, e.masters[app].epoch, "master"); err != nil {
			return err
		}
	}
	for _, app := range sortedApps(e.replicas) {
		rep := e.replicas[app]
		if err := ch.noteEpoch(e, em, app, rep.Epoch, "replica"); err != nil {
			return err
		}
		// A replica's round must have been acked by some lineage at an
		// epoch ≤ the replica's: promotion inherits the predecessor's
		// committed round into the successor epoch's image, so the bound
		// is cumulative across epochs, not per-epoch.
		if max, acked := ch.ackedThrough(app, rep.Epoch); rep.Round > max || (!acked && rep.Round > 0) {
			return fmt.Errorf("app %s: %s holds replica round %d at epoch %d but no master lineage through that epoch acked past round %d — replica ahead of master acks",
				app.Short(), e.Self().Addr, rep.Round, rep.Epoch, max)
		}
	}
	return nil
}

// ackedThrough returns the highest round any master lineage acked for app
// at any epoch ≤ through, and whether any such ack exists.
func (ch *Chaos) ackedThrough(app AppID, through int) (int, bool) {
	max, acked := 0, false
	for ep := 0; ep <= through; ep++ {
		if r, ok := ch.maxAcked[appEpoch{app, ep}]; ok {
			acked = true
			if r > max {
				max = r
			}
		}
	}
	return max, acked
}

func (ch *Chaos) noteEpoch(e *Engine, em map[AppID]int, app AppID, epoch int, role string) error {
	if prev, seen := em[app]; seen && epoch < prev {
		return fmt.Errorf("app %s: epoch regressed on %s: %s at epoch %d after holding epoch %d",
			app.Short(), e.Self().Addr, role, epoch, prev)
	}
	if epoch > em[app] {
		em[app] = epoch
	}
	return nil
}

// checkDualMasters asserts the reconciliation invariant: two live,
// unfinished masters for one app that can talk to each other must
// resolve by epoch within the grace window. (Split-brain across a
// partition is legal; lingering split-brain after a heal is the bug this
// harness exists to catch.)
func (ch *Chaos) checkDualMasters() error {
	now := ch.c.Net.Now()
	for _, app := range sortedApps(ch.c.apps) {
		var masters []*Engine
		for i := range ch.c.Engines {
			e := ch.c.Engines[i]
			if m, ok := e.masters[app]; ok && !m.done && ch.c.Net.Alive(e.Self().Addr) {
				masters = append(masters, e)
			}
		}
		var a, b *Engine
		for x := 0; x < len(masters) && a == nil; x++ {
			for y := x + 1; y < len(masters); y++ {
				if ch.c.Net.Reachable(masters[x].Self().Addr, masters[y].Self().Addr) {
					a, b = masters[x], masters[y]
					break
				}
			}
		}
		if a == nil {
			delete(ch.dualSince, app)
			continue
		}
		since, seen := ch.dualSince[app]
		if !seen {
			ch.dualSince[app] = now
			continue
		}
		if now-since > ch.cfg.DualMasterGrace {
			return fmt.Errorf("app %s: unreconciled split-brain: masters %s (epoch %d) and %s (epoch %d) mutually reachable for %v without resolving",
				app.Short(), a.Self().Addr, a.masters[app].epoch, b.Self().Addr, b.masters[app].epoch, now-since)
		}
	}
	return nil
}
