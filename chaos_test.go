package totoro

import (
	"strings"
	"testing"
	"time"

	"totoro/internal/pubsub"
	"totoro/internal/ring"
	"totoro/internal/simnet"
	"totoro/internal/store"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

// chaosCluster is the deployment the chaos harness drives: the full
// resilient stack (reliable hops, keep-alive repair, partial aggregation,
// replicated master state) plus durable, fault-injectable stores and an
// OnViolation handler that records instead of panicking, so tests can
// assert on Net.Violation().
func chaosCluster(seed int64, replicas int) *Cluster {
	return NewCluster(ClusterConfig{
		N:    60,
		Seed: seed,
		Ring: ring.Config{B: 4, ReliableHops: true, HopAckTimeout: 150 * time.Millisecond},
		PubSub: pubsub.Config{
			KeepAliveInterval: 100 * time.Millisecond,
			KeepAliveTimeout:  300 * time.Millisecond,
			AggTimeout:        2 * time.Second,
		},
		Bandwidth:            2 << 20,
		Replicas:             replicas,
		ReplicaCheckInterval: 300 * time.Millisecond,
		FailoverGrace:        500 * time.Millisecond,
		Durable:              true,
		FaultyStores:         true,
		OnViolation:          func(*simnet.InvariantViolation) {},
	})
}

// chaosSpec is the composed acceptance schedule: nine fault kinds overlap
// around t=2s — a partition that heals, message drop/dup/reorder rules, a
// fleet-wide extra-latency window, two slowed nodes, an asymmetric
// (one-way) partition, a WAL fsync fault window on two nodes, and a
// two-node kill with crash-restart.
const chaosSpec = "partition@1s+2s/frac=0.25;drop@500ms+3s/p=0.1;dup@500ms+3s/p=0.25;" +
	"reorder@1s+2s/p=0.3;delay@800ms+2s/d=30ms;slow@1s+2s/n=2,d=20ms;" +
	"oneway@1200ms+1800ms/frac=0.2;disk@1500ms+1500ms/n=2;kill@2s+1500ms/n=2"

// chaosRounds gives every acceptance run the same horizon: all faults
// heal by t=3.5s, leaving several clean rounds for the fleet to converge
// back onto the fault-free trajectory before the drift comparison.
const chaosRounds = 14

type chaosResult struct {
	points    []workload.AccuracyPoint
	commits   int
	violation *simnet.InvariantViolation
	phases    int
	restarts  int
	dupes     int64 // pubsub.upstream_dupes across the fleet
	snapshot  string
}

// runChaos trains one app to the given round count on a chaos cluster
// with the invariant checker installed, under the given nemesis schedule
// (empty = fault-free baseline), and runs the quiesce check before
// returning.
func runChaos(t *testing.T, seed int64, spec string, rounds int) chaosResult {
	t.Helper()
	c := chaosCluster(seed, 2)
	app := testApps(1, seed)[0]
	app.MaxRounds = rounds
	app.TargetAccuracy = 0.999 // unreachable: every run does all `rounds` rounds
	// Commit quorum of half the fleet: rounds flushed mid-fault hold for
	// the cut-off workers' updates instead of taking a nearly-empty step.
	app.MinParticipants = len(app.Shards) / 2
	id := c.DeployOnRandomNodes(app)
	chaos := c.StartChaos(ChaosConfig{})
	c.StartMaintenance(500 * time.Millisecond)

	var nem *simnet.Nemesis
	if spec != "" {
		phases, err := simnet.ParseSchedule(spec)
		if err != nil {
			t.Fatal(err)
		}
		// Data holders and the initial master are exempt, as in a real
		// harness run: chaos measures protocol recovery, not data loss.
		var exempt []transport.Addr
		for i := range c.shards {
			if _, ok := c.shards[i][id]; ok {
				exempt = append(exempt, c.Engines[i].Self().Addr)
			}
		}
		exempt = append(exempt, c.Master(id).Self().Addr)
		nem, err = c.Net.StartNemesis(simnet.NemesisConfig{
			Seed:      seed + 2,
			Phases:    phases,
			Exempt:    exempt,
			OnDisk:    chaos.DiskFault(store.FaultFsync),
			OnRestart: func(addr transport.Addr, _ time.Duration) { c.Restarted(addr) },
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	prog := c.TrainUntil(c.Net.Now()+10*time.Minute, id)[0]
	c.Net.CheckInvariants()

	res := chaosResult{
		points:    prog.Points,
		commits:   chaos.Commits,
		violation: c.Net.Violation(),
		snapshot:  c.Net.MergedSnapshot().String(),
	}
	if nem != nil {
		res.phases, res.restarts = nem.Phases, nem.Restarts
	}
	for _, e := range c.Engines {
		res.dupes += e.Metrics().Counter("pubsub.upstream_dupes").Value()
	}
	return res
}

// TestChaosAcceptance is the harness acceptance test: under the composed
// schedule — healed partition, drop/dup/reorder link rules, added latency,
// slowed nodes, a one-way partition, WAL fsync faults, and
// kill–crash-restart all overlapping — training must complete
// every round on every seed with zero invariant violations, and the final
// accuracy must land within 0.02 of the fault-free run of the same seed.
func TestChaosAcceptance(t *testing.T) {
	seeds := []int64{229, 233, 239, 241, 251}
	if testing.Short() {
		seeds = seeds[:2]
	}
	for _, seed := range seeds {
		base := runChaos(t, seed, "", chaosRounds)
		if base.violation != nil {
			t.Fatalf("seed %d: fault-free run violated an invariant:\n%v", seed, base.violation)
		}
		fault := runChaos(t, seed, chaosSpec, chaosRounds)
		if fault.violation != nil {
			t.Fatalf("seed %d: %v", seed, fault.violation)
		}
		if fault.phases < 8 {
			t.Fatalf("seed %d: only %d nemesis phases activated", seed, fault.phases)
		}
		if fault.commits == 0 {
			t.Fatalf("seed %d: checker observed no commits", seed)
		}
		if len(fault.points) == 0 || fault.points[len(fault.points)-1].Round != chaosRounds {
			t.Fatalf("seed %d: training did not complete under faults: %+v", seed, fault.points)
		}
		baseAcc := base.points[len(base.points)-1].Accuracy
		faultAcc := fault.points[len(fault.points)-1].Accuracy
		drift := baseAcc - faultAcc
		if drift < 0 {
			drift = -drift
		}
		if drift > 0.02 {
			t.Fatalf("seed %d: post-heal accuracy drifted: fault-free %.4f vs chaos %.4f (|diff| %.4f > 0.02)",
				seed, baseAcc, faultAcc, drift)
		}
	}
}

// TestChaosRunsAreBitIdentical replays the full chaos scenario — faults,
// crash-restarts, disk windows and all — twice per seed: trajectories,
// commit counts, nemesis activity, and the entire merged telemetry
// snapshot must be bit-identical. This is what makes a violation's seed a
// real repro handle.
func TestChaosRunsAreBitIdentical(t *testing.T) {
	for _, seed := range []int64{263, 269} {
		a := runChaos(t, seed, chaosSpec, chaosRounds)
		b := runChaos(t, seed, chaosSpec, chaosRounds)
		if a.violation != nil || b.violation != nil {
			t.Fatalf("seed %d: violations %v / %v", seed, a.violation, b.violation)
		}
		if a.commits != b.commits || a.phases != b.phases || a.restarts != b.restarts {
			t.Fatalf("seed %d: run shape diverged: commits %d/%d phases %d/%d restarts %d/%d",
				seed, a.commits, b.commits, a.phases, b.phases, a.restarts, b.restarts)
		}
		if len(a.points) != len(b.points) {
			t.Fatalf("seed %d: point counts differ: %d vs %d", seed, len(a.points), len(b.points))
		}
		for i := range a.points {
			if a.points[i] != b.points[i] {
				t.Fatalf("seed %d: round %d diverged: %+v vs %+v", seed, i+1, a.points[i], b.points[i])
			}
		}
		if a.snapshot != b.snapshot {
			t.Fatalf("seed %d: same-seed telemetry snapshots differ", seed)
		}
	}
}

// TestChaosCatchesInjectedRegression proves the checker actually fires:
// simulated engine bugs — replaying an already-committed round, and
// merging more client updates than workers exist — must each produce an
// InvariantViolation carrying the run's seed and a trace excerpt.
func TestChaosCatchesInjectedRegression(t *testing.T) {
	const seed = 271
	inject := func(t *testing.T, wantMsg string, bug func(m *Engine, id AppID, epoch int)) {
		t.Helper()
		c := chaosCluster(seed, 2)
		app := testApps(1, seed)[0]
		app.MaxRounds = 3
		app.TargetAccuracy = 0.999
		id := c.DeployOnRandomNodes(app)
		c.StartChaos(ChaosConfig{})
		c.StartMaintenance(500 * time.Millisecond)
		c.TrainUntil(c.Net.Now()+10*time.Minute, id)
		if v := c.Net.Violation(); v != nil {
			t.Fatalf("clean run violated an invariant: %v", v)
		}
		m := c.Master(id)
		if m == nil {
			t.Fatal("no master after training")
		}
		bug(m, id, m.masters[id].epoch)
		c.Net.CheckInvariants()
		v := c.Net.Violation()
		if v == nil {
			t.Fatal("injected regression went undetected")
		}
		if v.Seed != seed {
			t.Fatalf("violation seed = %d, want %d", v.Seed, seed)
		}
		if !strings.Contains(v.Err.Error(), wantMsg) {
			t.Fatalf("violation %q does not mention %q", v.Err, wantMsg)
		}
		if !strings.Contains(v.Error(), "deterministic replay") {
			t.Fatalf("violation rendering lacks the replay handle:\n%v", v)
		}
	}

	t.Run("replayed-commit", func(t *testing.T) {
		inject(t, "after already committing", func(m *Engine, id AppID, epoch int) {
			// A buggy master acks round 1 again after committing round 3.
			m.AckHook(id, epoch, 1, 1, true)
		})
	})
	t.Run("double-counted-update", func(t *testing.T) {
		inject(t, "double-counted", func(m *Engine, id AppID, epoch int) {
			// A buggy merge counts 99 participants against 10 workers.
			m.AckHook(id, epoch, 11, 99, true)
		})
	})
}

// TestRepeatedKillRestartSameNode crash-restarts the app's original
// master node three times in one run. Every rebirth must recover from the
// WAL, re-arm (re-join, reconcile mastership with whoever was promoted in
// the meantime), and training must still complete all rounds with the
// invariant checker clean — catching any state that survives one restart
// but not the second.
func TestRepeatedKillRestartSameNode(t *testing.T) {
	const seed = 277
	c := chaosCluster(seed, 2)
	app := testApps(1, seed)[0]
	app.MaxRounds = 10
	app.TargetAccuracy = 0.999
	id := c.DeployOnRandomNodes(app)
	c.StartChaos(ChaosConfig{})
	c.StartMaintenance(500 * time.Millisecond)

	victim := c.Master(id).Self().Addr
	victimIdx := c.EngineIndex(victim)
	original := c.Engines[victimIdx]

	var workerIdx int = -1
	for i := range c.shards {
		if _, ok := c.shards[i][id]; ok {
			workerIdx = i
			break
		}
	}
	c.Engines[workerIdx].StartTraining(id)

	rounds := func() int {
		if m := c.Master(id); m != nil {
			if p, ok := m.Progress(id); ok {
				return len(p.Points)
			}
		}
		return 0
	}

	deadline := c.Net.Now() + 10*time.Minute
	kills := 0
	var killedAt time.Duration
	down := false
	for c.Net.Now() < deadline && !c.allDone([]AppID{id}) {
		c.Net.Run(c.Net.Now() + 100*time.Millisecond)
		if down && c.Net.Now() >= killedAt+time.Second {
			c.Restart(victimIdx)
			down = false
		}
		if !down && kills < 3 && rounds() >= 2*(kills+1) && c.Net.Alive(victim) {
			c.Net.Fail(victim)
			killedAt = c.Net.Now()
			kills++
			down = true
		}
	}
	if down {
		c.Restart(victimIdx)
	}

	if kills != 3 {
		t.Fatalf("killed the node %d times, want 3", kills)
	}
	if v := c.Net.Violation(); v != nil {
		t.Fatalf("invariant violated across repeated restarts:\n%v", v)
	}
	c.Net.CheckInvariants()
	if v := c.Net.Violation(); v != nil {
		t.Fatalf("quiesce check failed:\n%v", v)
	}
	if c.Engines[victimIdx] == original {
		t.Fatal("restart did not rebuild the engine")
	}
	if !c.Engines[victimIdx].Recovered() {
		t.Fatal("final rebirth did not recover from the WAL")
	}
	recoveries := 0
	for _, e := range c.Engines {
		recoveries += int(e.Metrics().Counter("engine.recoveries").Value())
	}
	if recoveries < 3 {
		t.Fatalf("recoveries = %d, want >= 3 (one per rebirth)", recoveries)
	}
	prog := c.Progress(id)
	if prog == nil || len(prog.Points) == 0 {
		t.Fatal("no progress recorded")
	}
	if last := prog.Points[len(prog.Points)-1].Round; last != 10 {
		t.Fatalf("training ended at round %d, want 10", last)
	}
}

// TestStoreFaultDegradesLoudly opens an fsync fault window on the live
// master's store mid-training and asserts the journal-before-ack
// hardening: the engine degrades to non-durable with the store.degraded
// gauge raised, never journals again even after the fault window closes
// (appending past a gap would turn the clean WAL prefix into
// ack-then-lose), keeps training, and a later crash-restart recovers the
// clean pre-fault prefix and retrains to completion — all under the
// invariant checker.
func TestStoreFaultDegradesLoudly(t *testing.T) {
	const seed = 281
	c := chaosCluster(seed, 0) // no replicas: WAL recovery is the only path
	app := testApps(1, seed)[0]
	app.MaxRounds = 10
	app.TargetAccuracy = 0.999
	id := c.DeployOnRandomNodes(app)
	c.StartChaos(ChaosConfig{})
	c.StartMaintenance(500 * time.Millisecond)

	var workerIdx int = -1
	for i := range c.shards {
		if _, ok := c.shards[i][id]; ok {
			workerIdx = i
			break
		}
	}
	c.Engines[workerIdx].StartTraining(id)

	runUntilRounds := func(n int) {
		deadline := c.Net.Now() + 10*time.Minute
		for c.Net.Now() < deadline {
			if m := c.Master(id); m != nil {
				if p, ok := m.Progress(id); ok && len(p.Points) >= n {
					return
				}
			}
			c.Net.Run(c.Net.Now() + 100*time.Millisecond)
		}
		t.Fatalf("never reached %d rounds", n)
	}

	runUntilRounds(2)
	m := c.Master(id)
	masterIdx := c.EngineIndex(m.Self().Addr)
	faulty := c.FaultyStore(masterIdx)
	if faulty.Appends == 0 {
		t.Fatal("master journaled nothing before the fault window")
	}
	faulty.Fail(store.FaultFsync)

	runUntilRounds(5)
	if !m.Degraded() {
		t.Fatal("master kept a failing journal without degrading")
	}
	if got := m.Metrics().Gauge("store.degraded").Value(); got != 1 {
		t.Fatalf("store.degraded = %v, want 1", got)
	}
	if m.Metrics().Counter("store.errors").Value() == 0 {
		t.Fatal("degrade raised no store.errors")
	}
	if faulty.Failed == 0 {
		t.Fatal("fault window rejected no appends")
	}

	// Close the window: a hardened engine must NOT resume journaling —
	// the log may have a gap, and appends past it replay as a clean
	// prefix that silently drops everything after the gap.
	appendsAtHeal := faulty.Appends
	faulty.Heal()
	runUntilRounds(7)
	if faulty.Appends != appendsAtHeal {
		t.Fatalf("degraded engine appended %d records after the fault healed",
			faulty.Appends-appendsAtHeal)
	}

	// Crash the degraded master: recovery replays the clean pre-fault
	// prefix (rounds acked before the fault are never lost) and training
	// finishes from there.
	c.Net.Fail(m.Self().Addr)
	c.Net.Run(c.Net.Now() + time.Second)
	c.Restart(masterIdx)

	deadline := c.Net.Now() + 10*time.Minute
	for c.Net.Now() < deadline && !c.allDone([]AppID{id}) {
		c.Net.Run(c.Net.Now() + 100*time.Millisecond)
	}
	c.Net.CheckInvariants()
	if v := c.Net.Violation(); v != nil {
		t.Fatalf("invariant violated across degrade + crash-restart:\n%v", v)
	}
	reborn := c.Engines[masterIdx]
	if !reborn.Recovered() {
		t.Fatal("restarted master did not recover from its clean WAL prefix")
	}
	if reborn.Degraded() {
		t.Fatal("rebirth on a healthy store reports degraded")
	}
	prog := c.Progress(id)
	if prog == nil || len(prog.Points) == 0 {
		t.Fatal("no progress recorded")
	}
	if last := prog.Points[len(prog.Points)-1].Round; last != 10 {
		t.Fatalf("training ended at round %d, want 10", last)
	}
}

// TestDupInjectionIsDeduped runs training under a certain-duplication
// link rule: every upstream update arrives at least twice. The per-sender
// sequence dedup must discard the copies — observable in the
// pubsub.upstream_dupes counter — and the checker's participant
// accounting (merged participants <= deployed workers) must stay clean.
func TestDupInjectionIsDeduped(t *testing.T) {
	const seed = 283
	c := chaosCluster(seed, 2)
	app := testApps(1, seed)[0]
	app.MaxRounds = 6
	app.TargetAccuracy = 0.999
	id := c.DeployOnRandomNodes(app)
	c.StartChaos(ChaosConfig{})
	c.StartMaintenance(500 * time.Millisecond)
	heal := c.Net.AddLinkRule(simnet.LinkRule{Dup: 1.0})
	defer heal()

	prog := c.TrainUntil(c.Net.Now()+10*time.Minute, id)[0]
	c.Net.CheckInvariants()
	if v := c.Net.Violation(); v != nil {
		t.Fatalf("duplicated traffic broke an invariant (double-counted update?):\n%v", v)
	}
	if len(prog.Points) == 0 || prog.Points[len(prog.Points)-1].Round != 6 {
		t.Fatalf("training did not complete under duplication: %+v", prog.Points)
	}
	if c.Net.Metrics().Counter("net.dup_injected").Value() == 0 {
		t.Fatal("dup rule injected nothing")
	}
	dupes := int64(0)
	for _, e := range c.Engines {
		dupes += e.Metrics().Counter("pubsub.upstream_dupes").Value()
	}
	if dupes == 0 {
		t.Fatal("no duplicate upstream updates were caught by the seq dedup")
	}
}
