package totoro

import (
	"fmt"
	"math/rand"
	"time"

	"totoro/internal/fl"
	"totoro/internal/ids"
	"totoro/internal/transport"
	"totoro/internal/workload"
)

// AppID names one FL application on the ring; it is the SHA-1 hash of the
// application's textual name and its creator (paper §4.3 step a).
type AppID = ids.ID

// NewAppID derives an application's ID from its name and creator key.
func NewAppID(name, creator string) AppID { return ids.Hash("FL application", name, creator) }

// NewZonalAppID derives an AppID that lives inside one zone of the
// multi-ring structure: the zone prefix is forced onto the hash, so the
// rendezvous node (master) is guaranteed to be inside the zone and
// zone-restricted policies keep all traffic there.
func NewZonalAppID(name, creator string, zone uint64, zoneBits int) AppID {
	return ids.MakeZoned(zone, zoneBits, ids.Hash("FL application", name, creator))
}

// AppSpec is the application descriptor the owner ships to the rendezvous
// master with CreateTree. It carries everything workers and the master
// need to run rounds: architecture, initial parameters, client guidance,
// and the owner's policies (§4.4 application-level customization).
type AppSpec struct {
	ID   AppID
	Name string
	// Sizes is the MLP architecture [in, hidden..., classes].
	Sizes []int
	// InitParams are the initial global parameters.
	InitParams []float64
	// Cfg is the client training configuration (the "client protocol":
	// download/upload/training configuration of §2.1).
	Cfg fl.ClientConfig
	// Participation is the fraction of subscribed workers that train each
	// round; workers self-select deterministically.
	Participation float64
	// TargetAccuracy stops training when reached (evaluated at the master).
	TargetAccuracy float64
	// MaxRounds bounds the run.
	MaxRounds int
	// Compressor names the update compression policy: "", "none", "topk",
	// "int8", "f32", or "delta-int8" (owner-specified compression function,
	// Table 2 Broadcast). "f32" and "delta-int8" map to real codec-v2 wire
	// encodings, so their byte costs are exact over tcpnet, not estimates.
	Compressor string
	// TopK is the sparsification budget when Compressor == "topk".
	TopK int
	// NoiseSigma > 0 makes workers add Gaussian noise to their updates —
	// the differential-privacy hook of §4.4.
	NoiseSigma float64
	// ZoneRestricted refuses subscriptions (and thus traffic) from outside
	// the AppID's zone; pair with NewZonalAppID.
	ZoneRestricted bool
	// TreeFanout caps children per node on this application's tree
	// (0 = the overlay's natural fanout). Set at CreateTree and propagated
	// to every member.
	TreeFanout int
	// RoundDeadline makes the application's rounds semi-synchronous: any
	// tree node flushes its partial aggregate after this long, so a
	// straggling or failed subtree delays a round by at most the deadline
	// instead of stalling it (§2.2.1's communication-protocol
	// customization). Zero keeps rounds fully synchronous.
	RoundDeadline time.Duration
	// MinParticipants is the round commit quorum: a deadline-flushed round
	// that merged fewer client updates than this is held open (bounded, see
	// engine round holds) so late partials — stragglers, workers back from
	// a healed partition — commit the round for real instead of the model
	// taking a nearly-empty step during a fault window. Zero or one commits
	// whatever a flush delivers.
	MinParticipants int
	// Seed roots every worker's deterministic per-round training rng (see
	// package doc: derived as (Seed, round, node address)).
	Seed int64
}

// SpecFromWorkload converts a workload.App (the experiment harness
// description) into the wire-level AppSpec.
func SpecFromWorkload(id AppID, app *workload.App) AppSpec {
	comp := ""
	topk := 0
	switch c := app.Comp.(type) {
	case fl.TopK:
		comp, topk = "topk", c.K
	case fl.QuantizeInt8:
		comp = "int8"
	case fl.Float32:
		comp = "f32"
	case fl.DeltaInt8:
		comp = "delta-int8"
	}
	return AppSpec{
		ID:              id,
		Name:            app.Name,
		Sizes:           app.Proto.Sizes,
		InitParams:      app.Proto.Params(),
		Cfg:             app.Cfg,
		Participation:   app.Participation,
		TargetAccuracy:  app.TargetAccuracy,
		MaxRounds:       app.MaxRounds,
		Compressor:      comp,
		TopK:            topk,
		MinParticipants: app.MinParticipants,
		Seed:            app.Seed,
	}
}

// compressor resolves the spec's named compression policy.
func (s AppSpec) compressor() fl.Compressor {
	switch s.Compressor {
	case "", "none":
		return fl.NoCompression{}
	case "topk":
		k := s.TopK
		if k == 0 {
			k = 64
		}
		return fl.TopK{K: k}
	case "int8":
		return fl.QuantizeInt8{}
	case "f32":
		return fl.Float32{}
	case "delta-int8":
		return fl.DeltaInt8{}
	}
	panic(fmt.Sprintf("totoro: unknown compressor %q", s.Compressor))
}

// WireSize charges architecture plus initial parameters.
func (s AppSpec) WireSize() int { return 64 + len(s.Name) + 4*len(s.Sizes) + 8*len(s.InitParams) }

// --- wire payloads of the FL driver (carried inside pub/sub messages) ---

// announceMsg is routed toward the AppID; the rendezvous node stores the
// spec and becomes the application's master.
type announceMsg struct {
	Spec AppSpec
}

func (a announceMsg) WireSize() int { return a.Spec.WireSize() }

// startMsg is routed toward the AppID to begin (or resume) training.
type startMsg struct {
	App AppID
}

// roundStart is multicast from the master down the tree each round: the
// current global model plus client guidance.
type roundStart struct {
	App           AppID
	Round         int
	Sizes         []int
	Params        []float64
	Cfg           fl.ClientConfig
	Participation float64
	Compressor    string
	TopK          int
	NoiseSigma    float64
	// Seed roots the deterministic per-client rng derivation for the round.
	Seed int64
}

func (r roundStart) WireSize() int { return 64 + 4*len(r.Sizes) + 8*len(r.Params) }

// updateAgg is the upstream aggregation payload: a partial FedAvg
// aggregate plus the wire bytes its current form costs. A leaf's update
// costs its compressed size; once partials merge, the dense aggregate
// size applies (in-network aggregation keeps it constant per hop).
type updateAgg struct {
	Acc   *fl.Accum
	Bytes int
}

func (u updateAgg) WireSize() int { return 24 + u.Bytes }

// mergeUpdates is the associative combiner installed per tree.
func mergeUpdates(a, b any) any {
	ua, okA := a.(updateAgg)
	ub, okB := b.(updateAgg)
	if !okA || !okB {
		// Mixed payloads (user objects): keep the latest.
		return b
	}
	// The combiner owns its left operand (pub/sub hands partial aggregates
	// over by reference and the sender never touches them again), so the
	// merge reuses ua's buffer instead of allocating O(P) per hop.
	merged := fl.MergeInPlace(ua.Acc, ub.Acc)
	return updateAgg{Acc: merged, Bytes: 24 + 8*len(merged.WeightedSum)}
}

// GaussianNoise perturbs a copy of delta with N(0, sigma²) noise — the
// worker-side differential-privacy mechanism (§4.4).
func GaussianNoise(delta []float64, sigma float64, rng *rand.Rand) []float64 {
	out := append([]float64(nil), delta...)
	addGaussianNoise(out, sigma, rng)
	return out
}

// addGaussianNoise is GaussianNoise applied in place, for hot paths that
// own the delta buffer.
func addGaussianNoise(delta []float64, sigma float64, rng *rand.Rand) {
	for i := range delta {
		delta[i] += rng.NormFloat64() * sigma
	}
}

// participates decides deterministically whether a worker trains in a
// round: a hash of (app, node, round) is compared against the
// participation fraction, so any observer can reproduce the selection
// without a central selector.
func participates(app AppID, node transport.Addr, round int, fraction float64) bool {
	if fraction >= 1 {
		return true
	}
	if fraction <= 0 {
		return false
	}
	h := ids.Hash("selection", app.String(), string(node), fmt.Sprint(round))
	return float64(h.Hi>>11)/float64(1<<53) < fraction
}
