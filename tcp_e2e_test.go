package totoro_test

import (
	"encoding/json"
	"net/http"
	"sync"
	"testing"
	"time"

	totoro "totoro"
	"totoro/internal/obs"
	"totoro/internal/ring"
	"totoro/internal/transport"
	"totoro/internal/transport/tcpnet"
	"totoro/internal/wire"
)

// TestEnginesOverRealTCP runs four full Totoro engines as live TCP
// endpoints on localhost: dynamic overlay join, tree construction,
// broadcast, and in-network aggregation — the same code paths the
// simulator drives, over real sockets.
func TestEnginesOverRealTCP(t *testing.T) {
	totoro.RegisterWire()
	wire.RegisterPayload("")
	wire.RegisterPayload(1)

	type liveNode struct {
		node   *tcpnet.Node
		engine *totoro.Engine
	}
	var (
		mu        sync.Mutex
		delivered = map[transport.Addr]int{}
		aggregate int
		aggCount  int
	)
	mk := func(name string) *liveNode {
		ln := &liveNode{}
		n, err := tcpnet.Listen("127.0.0.1:0", func(e transport.Env) transport.Handler {
			ln.engine = totoro.NewEngine(e, ring.Contact{
				ID:   totoro.NewAppID("node", name), // any unique 128-bit id
				Addr: e.Self(),
			}, totoro.Options{Ring: ring.Config{B: 4}})
			ln.engine.SetCallbacks(totoro.Callbacks{
				OnBroadcast: func(app totoro.AppID, obj any, depth int, sub bool) {
					if sub {
						mu.Lock()
						delivered[e.Self()]++
						mu.Unlock()
					}
				},
				Combine: func(app totoro.AppID, a, b any) any { return a.(int) + b.(int) },
				OnAggregate: func(app totoro.AppID, round int, obj any, count int) {
					mu.Lock()
					aggregate = obj.(int)
					aggCount = count
					mu.Unlock()
				},
			})
			return ln.engine
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		ln.node = n
		return ln
	}

	nodes := []*liveNode{mk("a"), mk("b"), mk("c"), mk("d")}
	// Join everyone through the first node.
	bootstrap := nodes[0].node.Addr()
	for _, ln := range nodes[1:] {
		ln := ln
		ln.node.Do(func() { ln.engine.Join(bootstrap) })
		time.Sleep(150 * time.Millisecond) // sequential joins settle
	}
	waitFor(t, func() bool {
		ok := true
		for _, ln := range nodes[1:] {
			ln.node.Do(func() { ok = ok && ln.engine.Ring().Joined() })
		}
		return ok
	})

	topic := totoro.NewAppID("tcp-demo", "e2e")
	for _, ln := range nodes {
		ln := ln
		ln.node.Do(func() { ln.engine.SubscribeTopic(topic) })
	}
	time.Sleep(300 * time.Millisecond)

	nodes[1].node.Do(func() { nodes[1].engine.Broadcast(topic, "hello-edge") })
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(delivered) == len(nodes)
	})

	for _, ln := range nodes {
		ln := ln
		ln.node.Do(func() { ln.engine.Aggregate(topic, 1, 1) })
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return aggregate == len(nodes) && aggCount == len(nodes)
	})

	// The node's telemetry is live over HTTP: the same registry the protocol
	// layers write to is served at /metrics, exactly as `totoro-node -metrics`
	// exposes it.
	bound, stop, err := obs.StartServer("127.0.0.1:0", obs.RegistryHandler(nodes[0].node.Metrics()))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["pubsub.deliveries"] < 1 {
		t.Fatalf("live /metrics shows no pubsub deliveries: %v", snap.Counters)
	}
	if snap.Counters["net.msgs_in"] < 1 || snap.Counters["net.bytes_in"] < 1 {
		t.Fatalf("live /metrics shows no transport traffic: %v", snap.Counters)
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}
