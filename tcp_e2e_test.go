package totoro_test

import (
	"encoding/json"
	"math"
	"net/http"
	"sync"
	"testing"
	"time"

	totoro "totoro"
	"totoro/internal/obs"
	"totoro/internal/ring"
	"totoro/internal/transport"
	"totoro/internal/transport/tcpnet"
	"totoro/internal/wire"
)

// TestEnginesOverRealTCP runs four full Totoro engines as live TCP
// endpoints on localhost: dynamic overlay join, tree construction,
// broadcast, and in-network aggregation — the same code paths the
// simulator drives, over real sockets.
func TestEnginesOverRealTCP(t *testing.T) {
	totoro.RegisterWire()
	wire.RegisterPayload("")
	wire.RegisterPayload(1)

	type liveNode struct {
		node   *tcpnet.Node
		engine *totoro.Engine
	}
	var (
		mu        sync.Mutex
		delivered = map[transport.Addr]int{}
		aggregate int
		aggCount  int
	)
	mk := func(name string) *liveNode {
		ln := &liveNode{}
		n, err := tcpnet.Listen("127.0.0.1:0", func(e transport.Env) transport.Handler {
			ln.engine = totoro.NewEngine(e, ring.Contact{
				ID:   totoro.NewAppID("node", name), // any unique 128-bit id
				Addr: e.Self(),
			}, totoro.Options{Ring: ring.Config{B: 4}})
			ln.engine.SetCallbacks(totoro.Callbacks{
				OnBroadcast: func(app totoro.AppID, obj any, depth int, sub bool) {
					if sub {
						mu.Lock()
						delivered[e.Self()]++
						mu.Unlock()
					}
				},
				Combine: func(app totoro.AppID, a, b any) any { return a.(int) + b.(int) },
				OnAggregate: func(app totoro.AppID, round int, obj any, count int) {
					mu.Lock()
					aggregate = obj.(int)
					aggCount = count
					mu.Unlock()
				},
			})
			return ln.engine
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		ln.node = n
		return ln
	}

	nodes := []*liveNode{mk("a"), mk("b"), mk("c"), mk("d")}
	// Join everyone through the first node.
	bootstrap := nodes[0].node.Addr()
	for _, ln := range nodes[1:] {
		ln := ln
		ln.node.Do(func() { ln.engine.Join(bootstrap) })
		time.Sleep(150 * time.Millisecond) // sequential joins settle
	}
	waitFor(t, func() bool {
		ok := true
		for _, ln := range nodes[1:] {
			ln.node.Do(func() { ok = ok && ln.engine.Ring().Joined() })
		}
		return ok
	})

	topic := totoro.NewAppID("tcp-demo", "e2e")
	for _, ln := range nodes {
		ln := ln
		ln.node.Do(func() { ln.engine.SubscribeTopic(topic) })
	}
	time.Sleep(300 * time.Millisecond)

	nodes[1].node.Do(func() { nodes[1].engine.Broadcast(topic, "hello-edge") })
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(delivered) == len(nodes)
	})

	for _, ln := range nodes {
		ln := ln
		ln.node.Do(func() { ln.engine.Aggregate(topic, 1, 1) })
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return aggregate == len(nodes) && aggCount == len(nodes)
	})

	// The node's telemetry is live over HTTP: the same registry the protocol
	// layers write to is served at /metrics, exactly as `totoro-node -metrics`
	// exposes it.
	bound, stop, err := obs.StartServer("127.0.0.1:0", obs.RegistryHandler(nodes[0].node.Metrics()))
	if err != nil {
		t.Fatal(err)
	}
	defer stop()
	resp, err := http.Get("http://" + bound + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Counters["pubsub.deliveries"] < 1 {
		t.Fatalf("live /metrics shows no pubsub deliveries: %v", snap.Counters)
	}
	if snap.Counters["net.msgs_in"] < 1 || snap.Counters["net.bytes_in"] < 1 {
		t.Fatalf("live /metrics shows no transport traffic: %v", snap.Counters)
	}
}

// TestModelUpdateParityOverTCP is the simnet ↔ tcpnet parity check for
// wire format v2: the []float64 model updates that move as in-memory
// values under the simulator must arrive bit-identical over real sockets
// — including the float bit patterns (−0, ±Inf, denormals) that a lossy
// reencoding would disturb — and in-network aggregation over TCP must
// produce the exact sum, with zero decode errors end to end.
func TestModelUpdateParityOverTCP(t *testing.T) {
	totoro.RegisterWire()

	update := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1),
		math.SmallestNonzeroFloat64, -math.MaxFloat64, 0.1, 3}

	type liveNode struct {
		node   *tcpnet.Node
		engine *totoro.Engine
	}
	var (
		mu       sync.Mutex
		received = map[transport.Addr][]float64{}
		aggGot   []float64
	)
	mk := func(name string) *liveNode {
		ln := &liveNode{}
		n, err := tcpnet.Listen("127.0.0.1:0", func(e transport.Env) transport.Handler {
			ln.engine = totoro.NewEngine(e, ring.Contact{
				ID:   totoro.NewAppID("parity-node", name),
				Addr: e.Self(),
			}, totoro.Options{Ring: ring.Config{B: 4}})
			ln.engine.SetCallbacks(totoro.Callbacks{
				OnBroadcast: func(app totoro.AppID, obj any, depth int, sub bool) {
					if sub {
						mu.Lock()
						received[e.Self()] = obj.([]float64)
						mu.Unlock()
					}
				},
				Combine: func(app totoro.AppID, a, b any) any {
					av, bv := a.([]float64), b.([]float64)
					out := make([]float64, len(av))
					for i := range out {
						out[i] = av[i] + bv[i]
					}
					return out
				},
				OnAggregate: func(app totoro.AppID, round int, obj any, count int) {
					mu.Lock()
					aggGot = obj.([]float64)
					mu.Unlock()
				},
			})
			return ln.engine
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(n.Close)
		ln.node = n
		return ln
	}

	nodes := []*liveNode{mk("a"), mk("b"), mk("c")}
	bootstrap := nodes[0].node.Addr()
	for _, ln := range nodes[1:] {
		ln := ln
		ln.node.Do(func() { ln.engine.Join(bootstrap) })
		time.Sleep(150 * time.Millisecond)
	}
	topic := totoro.NewAppID("parity", "e2e")
	for _, ln := range nodes {
		ln := ln
		ln.node.Do(func() { ln.engine.SubscribeTopic(topic) })
	}
	time.Sleep(300 * time.Millisecond)

	nodes[0].node.Do(func() { nodes[0].engine.Broadcast(topic, update) })
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(received) == len(nodes)
	})
	mu.Lock()
	for addr, got := range received {
		if len(got) != len(update) {
			t.Fatalf("%s: got %d floats, want %d", addr, len(got), len(update))
		}
		for i := range update {
			if math.Float64bits(got[i]) != math.Float64bits(update[i]) {
				t.Fatalf("%s: index %d: bits %x != %x (value %v vs %v)",
					addr, i, math.Float64bits(got[i]), math.Float64bits(update[i]), got[i], update[i])
			}
		}
	}
	mu.Unlock()

	// Integer-valued contributions sum exactly in any aggregation order, so
	// the in-network tree sum over TCP must be bit-identical to the local
	// one.
	contrib := []float64{1, 2, 4}
	for _, ln := range nodes {
		ln := ln
		ln.node.Do(func() { ln.engine.Aggregate(topic, 1, append([]float64(nil), contrib...)) })
	}
	want := []float64{3, 6, 12}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		if len(aggGot) != len(want) {
			return false
		}
		for i := range want {
			if aggGot[i] != want[i] {
				return false
			}
		}
		return true
	})

	for _, ln := range nodes {
		if n := ln.node.DecodeErrors(); n != 0 {
			t.Fatalf("%s: %d decode errors during parity run", ln.node.Addr(), n)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("condition not met in time")
}
