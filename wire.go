package totoro

import (
	"encoding/gob"
	"sync"

	"totoro/internal/wire"
)

var wireOnce sync.Once

// RegisterWire registers every message type an Engine can put on the wire,
// enabling deployment over internal/transport/tcpnet: codec-v2 encoders
// for the hot FL driver messages (wire_codec.go) plus the gob
// registrations that back the fallback path and legacy (GobWire) peers.
// Call once per process before creating TCP-backed engines. Custom
// Broadcast/Aggregate payload types must additionally be registered with
// wire.RegisterPayload (they ride the gob fallback unless the app also
// installs a codec via codec.RegisterCodec).
func RegisterWire() {
	wireOnce.Do(func() {
		wire.Register()
		gob.Register(AppSpec{})
		gob.Register(announceMsg{})
		gob.Register(startMsg{})
		gob.Register(roundStart{})
		gob.Register(updateAgg{})
		gob.Register(replicaMsg{})
		gob.Register(masterPing{})
		gob.Register(walIdentity{})
		gob.Register(walSub{})
		gob.Register(walUnsub{})
		gob.Register(walRound{})
		gob.Register(walMaster{})
		gob.Register(walReplica{})
		gob.Register(walSnapshot{})
		registerCodecs()
	})
}
