package totoro

import (
	"encoding/gob"

	"totoro/internal/wire"
)

// RegisterWire registers every message type an Engine can put on the wire,
// enabling deployment over internal/transport/tcpnet. Call once per
// process before creating TCP-backed engines. Custom Broadcast/Aggregate
// payload types must additionally be registered with
// wire.RegisterPayload.
func RegisterWire() {
	wire.Register()
	gob.Register(AppSpec{})
	gob.Register(announceMsg{})
	gob.Register(startMsg{})
	gob.Register(roundStart{})
	gob.Register(updateAgg{})
	gob.Register(replicaMsg{})
}
