package totoro_test

// Benchmarks that regenerate every table and figure of the paper's
// evaluation (§7). Each benchmark wraps one experiment from
// internal/experiments and reports the figure's headline quantities as
// custom metrics. Run them all with:
//
//	go test -bench=. -benchmem
//
// Full-size experiments take minutes; pass -short for the reduced scale.
// The per-experiment index lives in DESIGN.md §3; paper-vs-measured
// numbers are recorded in EXPERIMENTS.md.

import (
	"sync"
	"testing"

	"totoro/internal/experiments"
)

// table3Once caches the (expensive) Table 3 run per scale so that the
// Table3/Fig8/Fig9 benchmarks share one execution.
var (
	table3Mu    sync.Mutex
	table3Cache = map[bool]experiments.Table3Result{}
)

func table3Shared(o experiments.Options) experiments.Table3Result {
	table3Mu.Lock()
	defer table3Mu.Unlock()
	if res, ok := table3Cache[o.Short]; ok {
		return res
	}
	res := experiments.Table3(o)
	table3Cache[o.Short] = res
	return res
}

func benchOpts(b *testing.B) experiments.Options {
	o := experiments.DefaultOptions()
	o.Short = testing.Short()
	return o
}

func BenchmarkFig5aZones(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5aZones(o)
		b.ReportMetric(float64(len(rows)), "zones")
	}
}

func BenchmarkFig5bMasterDistribution(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Fig5bMasterDistribution(o)
		b.ReportMetric(res.FracAtMost3, "frac<=3masters")
		b.ReportMetric(float64(res.MaxMasters), "max-masters")
	}
}

func BenchmarkFig5cMastersPerZone(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5cMastersPerZone(o)
		b.ReportMetric(float64(len(rows)), "zones")
	}
}

func BenchmarkFig5dTreeBalance(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig5dTreeBalance(o)
		maxLevel := 0
		for _, r := range rows {
			if r.Level > maxLevel {
				maxLevel = r.Level
			}
		}
		b.ReportMetric(float64(maxLevel), "max-depth")
	}
}

func BenchmarkFig6aDissemination(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6Scale(o, 4)
		last := rows[len(rows)-1]
		b.ReportMetric(last.DisseminationMs, "dissem-ms@max")
		b.ReportMetric(float64(last.Members), "members@max")
	}
}

func BenchmarkFig6bAggregation(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6Scale(o, 4)
		last := rows[len(rows)-1]
		b.ReportMetric(last.AggregationMs, "agg-ms@max")
	}
}

func BenchmarkFig6cFanout(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig6cFanout(o)
		b.ReportMetric(rows[0].DisseminationMs, "fanout8-ms")
		b.ReportMetric(rows[len(rows)-1].DisseminationMs, "fanout32-ms")
	}
}

func BenchmarkFig7Traffic(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig7Traffic(o)
		last := rows[len(rows)-1]
		b.ReportMetric(last.RatioTCP, "tcp-ratio@10x")
		b.ReportMetric(last.RatioUDP, "udp-ratio@10x")
	}
}

func BenchmarkTable3TimeToAccuracy(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := table3Shared(o)
		var maxSpeed, minSpeed float64
		minSpeed = 1e18
		for _, r := range res.Rows {
			if r.SpeedupOpenFL > maxSpeed {
				maxSpeed = r.SpeedupOpenFL
			}
			if r.SpeedupOpenFL < minSpeed {
				minSpeed = r.SpeedupOpenFL
			}
		}
		b.ReportMetric(minSpeed, "min-speedup")
		b.ReportMetric(maxSpeed, "max-speedup")
	}
}

func BenchmarkFig8SpeechCurves(b *testing.B) {
	// The speech curves come out of the same runs as Table 3; this bench
	// regenerates them standalone at the largest app count.
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := table3Shared(o)
		n := 0
		for key, c := range res.Curves {
			if containsSpeech(key) {
				n += len(c)
			}
		}
		b.ReportMetric(float64(n), "curve-points")
	}
}

func BenchmarkFig9FemnistCurves(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := table3Shared(o)
		n := 0
		for key, c := range res.Curves {
			if containsFemnist(key) {
				n += len(c)
			}
		}
		b.ReportMetric(float64(n), "curve-points")
	}
}

func containsSpeech(s string) bool  { return contains(s, "speech") }
func containsFemnist(s string) bool { return contains(s, "femnist") }
func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func BenchmarkFig10Regret(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		res := experiments.Fig10Regret(o)
		last := func(n string) float64 { c := res.Curves[n]; return c[len(c)-1] }
		b.ReportMetric(last("totoro"), "totoro-regret")
		b.ReportMetric(last("next-hop"), "nexthop-regret")
		b.ReportMetric(last("end-to-end"), "endtoend-regret")
	}
}

func BenchmarkFig11PathFrequencies(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		grids := experiments.Fig11PathFrequencies(o)
		for _, g := range grids {
			if g.Policy == "totoro" {
				b.ReportMetric(g.Grid[len(g.Grid)-1][0], "totoro-best-rate")
			}
		}
	}
}

func BenchmarkFig12Recovery(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig12Recovery(o)
		b.ReportMetric(rows[0].RecoveryMs, "recovery-ms@min-trees")
		b.ReportMetric(rows[len(rows)-1].RecoveryMs, "recovery-ms@max-trees")
	}
}

func BenchmarkFig13aCPU(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13Overhead(o)
		for _, r := range rows {
			if r.System == "totoro" && r.Phase == "dht" {
				b.ReportMetric(r.CPUSec*1000, "dht-cpu-ms")
			}
		}
	}
}

func BenchmarkFig13bMemory(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.Fig13Overhead(o)
		for _, r := range rows {
			if r.System == "totoro" && r.Phase == "dht" {
				b.ReportMetric(r.AllocMB, "dht-alloc-mb")
			}
		}
	}
}

func BenchmarkAblationInNetworkAggregation(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationInNetworkAggregation(o)
		last := rows[len(rows)-1]
		b.ReportMetric(float64(last.RootBytesInDirect)/float64(last.RootBytesInTree), "root-ingress-saving")
	}
}

func BenchmarkAblationMultiRing(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationMultiRing(o)
		for _, r := range rows {
			if r.Scheme == "multi-ring" {
				b.ReportMetric(r.CrossZoneShare, "crosszone-share")
			}
		}
	}
}

func BenchmarkAblationAdaptiveRelay(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationAdaptiveRelay(o)
		for _, r := range rows {
			if r.Policy == "totoro" {
				b.ReportMetric(r.MeanDelayMs, "adaptive-mean-ms")
			} else {
				b.ReportMetric(r.MeanDelayMs, "greedy-mean-ms")
			}
		}
	}
}

func BenchmarkAblationFedProx(b *testing.B) {
	o := benchOpts(b)
	for i := 0; i < b.N; i++ {
		rows := experiments.AblationFedProx(o)
		b.ReportMetric(rows[0].FedProxAcc-rows[0].FedAvgAcc, "prox-gain@minalpha")
	}
}
