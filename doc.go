// Package totoro is a fully decentralized federated-learning engine for
// edge networks — a from-scratch Go implementation of "Totoro: A Scalable
// Federated Learning Engine for the Edge" (EuroSys '24).
//
// # Architecture
//
// Totoro replaces the conventional "single master / many workers"
// parameter-server design with a DHT-based peer-to-peer model:
//
//   - Layer 1 — a locality-aware P2P multi-ring structure. All edge nodes
//     self-organize into a Pastry-style overlay (internal/ring) with
//     O(log N) prefix routing; Ratnasamy–Shenker distributed binning
//     divides the population into locality zones with a boundary-aware
//     two-level routing table (internal/multiring) for administrative
//     isolation.
//   - Layer 2 — a publish/subscribe-based forest. Every FL application is
//     assigned a dynamically-structured dataflow tree rooted at the node
//     whose ID is numerically closest to the AppId (internal/pubsub). The
//     root is the application's master; interior nodes aggregate
//     in-network; subscribers are the workers. Because AppIds are uniform
//     hashes, masters spread evenly over the population and no node is a
//     global bottleneck.
//   - Layer 3 — this package: the high-level API of the paper's Table 2
//     (Join, CreateTree, Subscribe, Broadcast, OnBroadcast, Aggregate,
//     OnAggregate, OnTimer) plus a complete FL driver with per-application
//     policies (aggregation function, participant selection, gradient
//     compression, differential-privacy noise), and a bandit-based
//     path-planning model (internal/bandit) for unreliable links.
//
// # Running it
//
// An Engine is one edge node's protocol stack; it is event-driven and runs
// over any transport.Env. Cluster builds a whole simulated deployment in
// one call — see examples/quickstart for the five-minute tour, and
// cmd/totoro-node for running engines over real TCP.
package totoro
